(** Adversarial noise for the synchronous network (§2.1).

    Channel alphabet: a transmission slot holds [Some bit] or [None]
    (silence, the paper's ∗).  Following the paper's *additive* adversary,
    a corruption is an addend e ∈ {1, 2} applied to the slot value in
    Z₃ under the encoding 0 ↦ 0, 1 ↦ 1, ∗ ↦ 2.  This uniformly expresses
    all three noise types: on a sent bit an addend flips it (substitution)
    or silences it (deletion); on a silent slot it conjures a bit
    (insertion).  Every nonzero addend counts as one corruption.

    Two adversary classes:
    - {e oblivious}: the addend for each (round, directed link) slot is a
      pure function fixed before the execution — independent of the
      parties' randomness (the model of Theorems 1.1 / §4–5);
    - {e adaptive} (non-oblivious): a strategy that observes the current
      round's genuine traffic and global progress and chooses corruptions
      on the fly (the model of Theorem 1.2 / §6), subject to a budget
      that the network enforces relative to the communication actually
      performed. *)

type phase = Exchange | Meeting_points | Flag | Simulation | Rewind | Idle

val phase_to_string : phase -> string

type context = {
  round : int;  (** global round number *)
  iteration : int;  (** scheme iteration, −1 outside the main loop *)
  phase : phase;
  graph : Topology.Graph.t;
  cc_sent : int;  (** transmissions sent so far (incl. this round's) *)
  corruptions : int;  (** corruptions committed so far *)
  budget_left : int;  (** further corruptions the budget allows *)
  sends : (int * int * bool) list;  (** this round's true (src, dst, bit) *)
}

type t =
  | Silent  (** noiseless channel *)
  | Oblivious of (round:int -> dir:int -> int)
      (** additive: slot addend in {0,1,2}; must be a pure function *)
  | Oblivious_fixing of (round:int -> dir:int -> int option)
      (** the {e fixing} oblivious adversary of Remark 1: [Some s] forces
          the slot's output to the Z₃ symbol [s] (0, 1, or 2 = silence)
          regardless of what was sent; [None] leaves the slot alone.
          A fixed slot counts as a corruption only when the forced output
          differs from the honest one — exactly the counting subtlety the
          remark discusses. *)
  | Adaptive of { budget : int -> int; strategy : context -> (int * int) list }
      (** [budget cc] is the corruption allowance as a function of the
          communication performed so far (e.g. [fun cc -> cc / 100]);
          [strategy ctx] returns (dir_id, addend) corruption requests for
          this round.  Requests beyond the budget are ignored. *)

(** {2 Oblivious pattern builders} *)

val iid : Util.Rng.t -> rate:float -> t
(** Each slot independently corrupted with probability [rate], addend
    uniform in {1,2}.  (The pattern is a pure function of the slot and a
    private RNG key, hence oblivious.) *)

val iid_fixing : Util.Rng.t -> rate:float -> t
(** The fixing counterpart of {!iid}: each slot is independently forced,
    with probability [rate], to a uniform symbol in {0, 1, ∗}.  Note a
    forced slot is only a corruption when it actually changes the
    output, so the realised corruption count is lower than {!iid}'s at
    equal [rate] (Remark 1's accounting). *)

val sampled_slots :
  Util.Rng.t -> count:int -> rounds:int -> dirs:int -> t
(** Exactly [count] corruptions at distinct uniformly random
    (round < rounds, dir < dirs) slots. *)

val burst : Util.Rng.t -> start_round:int -> len:int -> dirs:int list -> t
(** Corrupt every slot of the given directed links for [len] consecutive
    rounds from [start_round] — a concentrated attack on a region. *)

val single : round:int -> dir:int -> addend:int -> t
(** One corruption, for unit tests and the §1.2 cascade example. *)

val of_slots : (int * int * int) list -> t
(** Explicit (round, dir, addend) list. *)

val compose : t -> t -> t
(** Superpose two oblivious noise patterns (addends add in Z₃; opposing
    corruptions may cancel, which then costs nothing — the additive
    model's arithmetic).  Silent is the identity.  Raises
    [Invalid_argument] if either side is adaptive or fixing: those carry
    budgets/output-forcing whose composition semantics would be
    ambiguous. *)

(** {2 Adaptive strategies} *)

val adaptive_link_target :
  edge_dirs:int list -> rate_denom:int -> phases:phase list -> t
(** Greedy non-oblivious attack: corrupt every transmission on the given
    directed links during the given phases, whenever the running budget
    (1/[rate_denom] of the communication so far) allows. *)

val adaptive_phase_attack : rate_denom:int -> phases:phase list -> Util.Rng.t -> t
(** Corrupt random traffic during the given phases (e.g. flag-passing
    sabotage), respecting the running budget. *)
