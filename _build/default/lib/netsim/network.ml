type t = {
  graph : Topology.Graph.t;
  adversary : Adversary.t;
  mutable round_no : int;
  mutable cc : int;
  mutable corruptions : int;
  mutable iteration : int;
  mutable phase : Adversary.phase;
  (* Directed link id -> (src, dst); slot values indexed by dir id. *)
  dir_ends : (int * int) array;
  slots : int array; (* Z3-encoded symbol per directed link, rebuilt each round *)
}

let dir_endpoints g =
  let m = Topology.Graph.m g in
  let ends = Array.make (2 * m) (0, 0) in
  Array.iteri
    (fun id (u, v) ->
      let lo = min u v and hi = max u v in
      ends.(2 * id) <- (lo, hi);
      ends.((2 * id) + 1) <- (hi, lo))
    (Topology.Graph.edges g);
  ends

let create graph adversary =
  {
    graph;
    adversary;
    round_no = 0;
    cc = 0;
    corruptions = 0;
    iteration = -1;
    phase = Adversary.Idle;
    dir_ends = dir_endpoints graph;
    slots = Array.make (2 * Topology.Graph.m graph) 2;
  }

let graph t = t.graph

let set_phase t ~iteration ~phase =
  t.iteration <- iteration;
  t.phase <- phase

(* Symbols in Z3: 0, 1 are bits; 2 is silence (∗). *)
let encode = function None -> 2 | Some false -> 0 | Some true -> 1
let decode = function 0 -> Some false | 1 -> Some true | _ -> None

let round t ~sends =
  let two_m = Array.length t.slots in
  Array.fill t.slots 0 two_m 2;
  List.iter
    (fun (src, dst, bit) ->
      let d = Topology.Graph.dir_id t.graph ~src ~dst in
      if t.slots.(d) <> 2 then invalid_arg "Network.round: duplicate send on a directed link";
      t.slots.(d) <- encode (Some bit);
      t.cc <- t.cc + 1)
    sends;
  (* Collect the adversary's addends for this round.  A fixing adversary
     is translated into the addend that forces its chosen output; forcing
     the honest symbol yields addend 0 and is free (Remark 1). *)
  let addends = Array.make two_m 0 in
  (match t.adversary with
  | Adversary.Silent -> ()
  | Adversary.Oblivious pattern ->
      for d = 0 to two_m - 1 do
        let a = pattern ~round:t.round_no ~dir:d in
        assert (a >= 0 && a <= 2);
        addends.(d) <- a
      done
  | Adversary.Oblivious_fixing pattern ->
      for d = 0 to two_m - 1 do
        match pattern ~round:t.round_no ~dir:d with
        | None -> ()
        | Some forced ->
            assert (forced >= 0 && forced <= 2);
            addends.(d) <- ((forced - t.slots.(d)) mod 3 + 3) mod 3
      done
  | Adversary.Adaptive { budget; strategy } ->
      let budget_left = max 0 (budget t.cc - t.corruptions) in
      let ctx =
        Adversary.
          {
            round = t.round_no;
            iteration = t.iteration;
            phase = t.phase;
            graph = t.graph;
            cc_sent = t.cc;
            corruptions = t.corruptions;
            budget_left;
            sends;
          }
      in
      let left = ref budget_left in
      List.iter
        (fun (d, a) ->
          if d >= 0 && d < two_m && (a = 1 || a = 2) && addends.(d) = 0 && !left > 0 then begin
            addends.(d) <- a;
            decr left
          end)
        (strategy ctx));
  let delivered = ref [] in
  for d = two_m - 1 downto 0 do
    let a = addends.(d) in
    if a <> 0 then t.corruptions <- t.corruptions + 1;
    match decode ((t.slots.(d) + a) mod 3) with
    | None -> ()
    | Some bit ->
        let src, dst = t.dir_ends.(d) in
        delivered := (src, dst, bit) :: !delivered
  done;
  t.round_no <- t.round_no + 1;
  !delivered

let silence t ~rounds =
  for _ = 1 to rounds do
    ignore (round t ~sends:[])
  done

let rounds t = t.round_no
let cc t = t.cc
let corruptions t = t.corruptions
let noise_fraction t = if t.cc = 0 then 0. else float_of_int t.corruptions /. float_of_int t.cc
