(** The synchronous noisy network of §2.1.

    Execution proceeds in global rounds.  In a round, any subset of
    parties submits at most one bit per incident directed link; the
    adversary transforms each of the 2m directed-link slots (including
    silent ones, enabling insertions); the network delivers what survives.

    The network keeps the two books the paper's accounting needs:
    - [cc]: the number of transmissions the parties actually sent — the
      communication complexity CC of the instance;
    - [corruptions]: the number of corrupted slots, so that the noise
      fraction of the instance is [corruptions / cc]. *)

type t

val create : Topology.Graph.t -> Adversary.t -> t
val graph : t -> Topology.Graph.t

val set_phase : t -> iteration:int -> phase:Adversary.phase -> unit
(** Label the upcoming rounds for adaptive adversaries and traces.  The
    label leaks no private state: the schedule of phases is public by
    construction (each phase has an a-priori fixed number of rounds). *)

val round : t -> sends:(int * int * bool) list -> (int * int * bool) list
(** [round t ~sends] executes one synchronous round.  [sends] holds
    (src, dst, bit) transmissions — src and dst must be adjacent and a
    directed link may appear at most once.  Returns the delivered
    (src, dst, bit) list: substituted bits are altered, deleted ones are
    absent, inserted ones appear though never sent. *)

val silence : t -> rounds:int -> unit
(** Let [rounds] rounds pass with no party speaking (insertions may still
    occur but nobody is listening — used to advance the clock). *)

val rounds : t -> int
(** Rounds elapsed. *)

val cc : t -> int
val corruptions : t -> int

val noise_fraction : t -> float
(** [corruptions / cc] (0 when nothing was sent). *)
