lib/smallbias/generator.mli: Util
