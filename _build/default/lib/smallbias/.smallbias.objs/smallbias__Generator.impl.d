lib/smallbias/generator.ml: Array Gf Gf2k Int64 Util
