(** δ-biased pseudorandom strings from short seeds (paper §2.3, Lemma 2.5).

    Implements the linear-feedback-shift-register construction of Alon,
    Goldreich, Håstad and Peralta ("Simple constructions of almost k-wise
    independent random variables", 1992), which is one of the two
    constructions the paper cites: the seed is a pair (f, s) of a random
    irreducible polynomial f of degree 62 over GF(2) and a nonzero start
    state s ∈ GF(2^62); output bit i is ⟨x^i mod f, s⟩.

    A string of n bits produced this way has bias at most (n−1)/2^61 over
    the choice of seed — far below the 2^{-Θ(|Π|K/m)} the coding scheme
    requires for the parameter ranges we simulate, while the seed is only
    124 random bits and therefore cheap to exchange over a noisy link
    (Algorithm 5). *)

type t

val seed_bits : int
(** Number of uniform seed bits consumed by {!of_seed} (128). *)

val create : f:int -> s:int -> t
(** [create ~f ~s] builds a generator from the low bits of an irreducible
    degree-62 polynomial [f] and a nonzero start state [s] (low 62 bits).
    Raises [Invalid_argument] if [f] is reducible or [s] is zero. *)

val sample : Util.Rng.t -> t
(** Sample a uniformly random seed (rejection-samples the irreducible f). *)

val of_seed : int64 * int64 -> t
(** [of_seed (a, b)] deterministically expands 128 uniform bits into a
    valid seed: [a] seeds the search for an irreducible f, [b] gives the
    start state.  This is the function G of Lemma 2.5 as used by the
    randomness-exchange protocol: both endpoints apply it to the same
    exchanged bits and obtain the same generator. *)

val seed : t -> int * int
(** The (f, s) pair, for serialization. *)

val next_word : t -> int64
(** The next 64 output bits (bit j of the result is stream bit
    [64*cursor + j]); advances the cursor by one word. *)

val word_index : t -> int
(** Current cursor position in words. *)

val seek_word : t -> int -> unit
(** Move the cursor to an absolute word index; both directions cost
    O(popcount) field multiplications via a precomputed power table.
    After [seek_word g i], [next_word g] returns word [i]. *)

val bit_at : t -> int -> bool
(** Random access to a single stream bit (does not move the cursor). *)
