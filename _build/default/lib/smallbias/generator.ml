open Gf

(* The output sequence b_i = ⟨x^i mod f, s⟩ is a linear recurring sequence
   with characteristic polynomial f: for n ≥ 62,
       b_n = parity(f_low & (b_{n-62} … b_{n-1})).
   The generator therefore keeps a 62-bit *window* of upcoming output bits
   as its hot state; producing a 64-bit word and the next window is a
   GF(2)-linear map of the window, which we tabulate byte-wise: 8 table
   lookups and a handful of xors per word.  The field representation is
   kept alongside for seeking and random access. *)

type t = {
  field : Gf2k.field;
  s : int;
  mutable window : int; (* bits 64·widx .. 64·widx+61 of the stream *)
  mutable widx : int;
  (* Byte-indexed tables: entry pos*256+byte gives, for a window whose
     byte [pos] is [byte] (rest zero), the produced word (lo/hi 32-bit
     halves) and the successor window. *)
  mutable tbl_lo : int array;
  mutable tbl_hi : int array;
  mutable tbl_w : int array;
}

let seed_bits = 128
let state_mask = (1 lsl 62) - 1

(* The first 62 upcoming bits from a field state p: ⟨p·x^j, s⟩, j < 62. *)
let window_of_state field s p0 =
  let w = ref 0 in
  let p = ref p0 in
  for j = 0 to 61 do
    if Gf2k.parity_int (!p land s) = 1 then w := !w lor (1 lsl j);
    p := Gf2k.step field !p
  done;
  !w

let create ~f ~s =
  let s = s land state_mask in
  if s = 0 then invalid_arg "Generator.create: zero start state";
  let field = Gf2k.make ~modulus_low:f in
  {
    field;
    s;
    window = window_of_state field s 1;
    widx = 0;
    tbl_lo = [||];
    tbl_hi = [||];
    tbl_w = [||];
  }

let sample rng =
  let f = Gf2k.random_irreducible rng in
  let rec nonzero () =
    let s = Int64.to_int (Util.Rng.int64 rng) land state_mask in
    if s = 0 then nonzero () else s
  in
  create ~f ~s:(nonzero ())

let of_seed (a, b) =
  (* Deterministic irreducible search: hash the candidate space starting
     from [a] until Rabin's test passes.  Both endpoints of a link run this
     on identical bits, so they derive identical generators. *)
  let rec find i =
    let cand = (Int64.to_int (Util.Rng.at ~seed:a i) land state_mask) lor 1 in
    if Gf2k.is_irreducible cand then cand else find (i + 1)
  in
  let f = find 0 in
  let rec nonzero i =
    let s = Int64.to_int (Util.Rng.at ~seed:b i) land state_mask in
    if s = 0 then nonzero (i + 1) else s
  in
  create ~f ~s:(nonzero 0)

let seed t = (Gf2k.modulus_low t.field, t.s)

(* From window w, produce (word_lo, word_hi, next_window) by running the
   recurrence 64 steps — the reference implementation the tables encode. *)
let extend_window f_low w0 =
  let lo = ref (w0 land 0xFFFFFFFF) in
  let hi = ref ((w0 lsr 32) land 0x3FFFFFFF) in
  let w = ref w0 in
  for n = 62 to 125 do
    let b = Gf2k.parity_int (!w land f_low) in
    if n < 64 && b = 1 then hi := !hi lor (1 lsl (n - 32));
    w := (!w lsr 1) lor (b lsl 61)
  done;
  (!lo, !hi, !w)

let ensure_tables t =
  if Array.length t.tbl_lo = 0 then begin
    let f_low = Gf2k.modulus_low t.field in
    (* Bit basis first. *)
    let b_lo = Array.make 62 0 and b_hi = Array.make 62 0 and b_w = Array.make 62 0 in
    for k = 0 to 61 do
      let lo, hi, w = extend_window f_low (1 lsl k) in
      b_lo.(k) <- lo;
      b_hi.(k) <- hi;
      b_w.(k) <- w
    done;
    let tbl_lo = Array.make (8 * 256) 0
    and tbl_hi = Array.make (8 * 256) 0
    and tbl_w = Array.make (8 * 256) 0 in
    for pos = 0 to 7 do
      for byte = 0 to 255 do
        let lo = ref 0 and hi = ref 0 and w = ref 0 in
        for bit = 0 to 7 do
          let k = (8 * pos) + bit in
          if k < 62 && (byte lsr bit) land 1 = 1 then begin
            lo := !lo lxor b_lo.(k);
            hi := !hi lxor b_hi.(k);
            w := !w lxor b_w.(k)
          end
        done;
        let idx = (pos * 256) + byte in
        tbl_lo.(idx) <- !lo;
        tbl_hi.(idx) <- !hi;
        tbl_w.(idx) <- !w
      done
    done;
    t.tbl_lo <- tbl_lo;
    t.tbl_hi <- tbl_hi;
    t.tbl_w <- tbl_w
  end

let next_word t =
  ensure_tables t;
  let w = t.window in
  let lo = ref 0 and hi = ref 0 and nw = ref 0 in
  for pos = 0 to 7 do
    let idx = (pos * 256) + ((w lsr (8 * pos)) land 0xFF) in
    lo := !lo lxor Array.unsafe_get t.tbl_lo idx;
    hi := !hi lxor Array.unsafe_get t.tbl_hi idx;
    nw := !nw lxor Array.unsafe_get t.tbl_w idx
  done;
  t.window <- !nw;
  t.widx <- t.widx + 1;
  Int64.logor (Int64.of_int !lo) (Int64.shift_left (Int64.of_int !hi) 32)

let word_index t = t.widx

let seek_word t i =
  assert (i >= 0);
  if i <> t.widx then begin
    (* Field-side random access: state x^(64·i), then rebuild the window. *)
    let p = Gf2k.pow_x t.field (64 * i) in
    t.window <- window_of_state t.field t.s p;
    t.widx <- i
  end

let bit_at t i = Gf2k.parity_int (Gf2k.pow_x t.field i land t.s) = 1
