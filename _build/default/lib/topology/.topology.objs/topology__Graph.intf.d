lib/topology/graph.mli: Format Util
