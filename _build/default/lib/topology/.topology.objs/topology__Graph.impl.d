lib/topology/graph.ml: Array Format Hashtbl List Queue Util
