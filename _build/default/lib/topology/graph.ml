type t = {
  n : int;
  edges : (int * int) array;
  adj : int array array;
  ids : (int * int, int) Hashtbl.t;
}

type tree = {
  root : int;
  parent : int array;
  children : int array array;
  level : int array;
  depth : int;
}

let n t = t.n
let m t = Array.length t.edges
let edges t = t.edges
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)
let max_degree t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    d := max !d (degree t v)
  done;
  !d

let are_adjacent t u v = Hashtbl.mem t.ids (min u v, max u v)

let edge_id t u v =
  match Hashtbl.find_opt t.ids (min u v, max u v) with
  | Some id -> id
  | None -> raise Not_found

let dir_id t ~src ~dst = (2 * edge_id t src dst) + if src < dst then 0 else 1

let bfs_dist t root =
  let dist = Array.make t.n (-1) in
  dist.(root) <- 0;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  dist

let create ~n ~edges =
  if n < 1 then invalid_arg "Graph.create: n < 1";
  let ids = Hashtbl.create (List.length edges) in
  List.iteri
    (fun i (u, v) ->
      if u = v then invalid_arg "Graph.create: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: endpoint out of range";
      let key = (min u v, max u v) in
      if Hashtbl.mem ids key then invalid_arg "Graph.create: duplicate edge";
      Hashtbl.add ids key i)
    edges;
  let adj_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj_lists.(u) <- v :: adj_lists.(u);
      adj_lists.(v) <- u :: adj_lists.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort compare l)) adj_lists in
  let t = { n; edges = Array.of_list edges; adj; ids } in
  if n > 1 then begin
    let dist = bfs_dist t 0 in
    if Array.exists (fun d -> d < 0) dist then invalid_arg "Graph.create: not connected"
  end;
  t

let diameter t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    Array.iter (fun x -> d := max !d x) (bfs_dist t v)
  done;
  !d

(* --- generators --- *)

let line n = create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: n < 3";
  create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  if n < 2 then invalid_arg "Graph.star: n < 2";
  create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let clique n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  create ~n ~edges:!edges

let grid ~rows ~cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  create ~n:(rows * cols) ~edges:!edges

let binary_tree n = create ~n ~edges:(List.init (n - 1) (fun i -> (i / 2, i + 1)))

let random_connected rng ~n ~extra_edges =
  (* Random attachment tree, then extra uniformly random non-tree edges. *)
  let edges = ref [] in
  let present = Hashtbl.create 16 in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem present key) then begin
      Hashtbl.add present key ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  for v = 1 to n - 1 do
    ignore (add v (Util.Rng.int rng v))
  done;
  let budget = min extra_edges (((n * (n - 1)) / 2) - (n - 1)) in
  let added = ref 0 in
  while !added < budget do
    if add (Util.Rng.int rng n) (Util.Rng.int rng n) then incr added
  done;
  create ~n ~edges:!edges

let hypercube d =
  if d < 1 || d > 10 then invalid_arg "Graph.hypercube: dimension in 1..10";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if v < u then edges := (v, u) :: !edges
    done
  done;
  create ~n ~edges:!edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Graph.torus: rows, cols >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  create ~n:(rows * cols) ~edges:!edges

let random_regular rng ~n ~degree =
  if degree < 2 || degree >= n then invalid_arg "Graph.random_regular: degree";
  if n * degree mod 2 <> 0 then invalid_arg "Graph.random_regular: n * degree odd";
  (* Pairing model with bounded retries per attempt; re-attempt until the
     result is connected. *)
  let attempt () =
    let present = Hashtbl.create (n * degree / 2) in
    let deg = Array.make n 0 in
    let edges = ref [] in
    let stuck = ref 0 in
    while List.length !edges < n * degree / 2 && !stuck < 200 do
      let candidates = ref [] in
      for v = 0 to n - 1 do
        if deg.(v) < degree then candidates := v :: !candidates
      done;
      match !candidates with
      | [] -> stuck := 200
      | cs ->
          let pick () = List.nth cs (Util.Rng.int rng (List.length cs)) in
          let u = pick () and v = pick () in
          let key = (min u v, max u v) in
          if u <> v && not (Hashtbl.mem present key) then begin
            Hashtbl.replace present key ();
            deg.(u) <- deg.(u) + 1;
            deg.(v) <- deg.(v) + 1;
            edges := (u, v) :: !edges;
            stuck := 0
          end
          else incr stuck
    done;
    (* Patch phase: vertices the pairing left behind get wired to random
       non-adjacent vertices, tolerating degree + 1 at the target. *)
    for v = 0 to n - 1 do
      let guard = ref 0 in
      while deg.(v) < degree - 1 && !guard < 200 do
        incr guard;
        let u = Util.Rng.int rng n in
        let key = (min u v, max u v) in
        if u <> v && (not (Hashtbl.mem present key)) && deg.(u) <= degree then begin
          Hashtbl.replace present key ();
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          edges := (u, v) :: !edges
        end
      done
    done;
    !edges
  in
  let rec go tries =
    if tries > 100 then invalid_arg "Graph.random_regular: could not build a connected graph";
    let edges = attempt () in
    match create ~n ~edges with g -> g | exception Invalid_argument _ -> go (tries + 1)
  in
  go 0

let bfs_tree ?(root = 0) t =
  let parent = Array.make t.n (-1) in
  let level = Array.make t.n 0 in
  parent.(root) <- root;
  level.(root) <- 1;
  let q = Queue.create () in
  Queue.add root q;
  let depth = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if parent.(v) < 0 then begin
          parent.(v) <- u;
          level.(v) <- level.(u) + 1;
          depth := max !depth level.(v);
          Queue.add v q
        end)
      t.adj.(u)
  done;
  let children_lists = Array.make t.n [] in
  for v = t.n - 1 downto 0 do
    if v <> root then children_lists.(parent.(v)) <- v :: children_lists.(parent.(v))
  done;
  { root; parent; children = Array.map Array.of_list children_lists; level; depth = !depth }

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d):" t.n (m t);
  Array.iter (fun (u, v) -> Format.fprintf ppf " %d-%d" u v) t.edges
