(* Tests for GF(2^62) and GF(256): field axioms, irreducibility testing,
   and consistency of the fast paths against naive definitions. *)

open Gf

let rng = Util.Rng.create 0xF1E1D

let rand62 () = Int64.to_int (Util.Rng.int64 rng) land ((1 lsl 62) - 1)

(* --- GF(2^62) --- *)

let f = Gf2k.default

let test_gf62_default_irreducible () =
  Alcotest.(check bool) "default modulus irreducible" true
    (Gf2k.is_irreducible (Gf2k.modulus_low f))

let test_gf62_mul_identity () =
  for _ = 1 to 50 do
    let a = rand62 () in
    Alcotest.(check int) "a*1 = a" a (Gf2k.mul f a 1);
    Alcotest.(check int) "1*a = a" a (Gf2k.mul f 1 a);
    Alcotest.(check int) "a*0 = 0" 0 (Gf2k.mul f a 0)
  done

let test_gf62_mul_commutative () =
  for _ = 1 to 50 do
    let a = rand62 () and b = rand62 () in
    Alcotest.(check int) "ab = ba" (Gf2k.mul f a b) (Gf2k.mul f b a)
  done

let test_gf62_mul_associative () =
  for _ = 1 to 30 do
    let a = rand62 () and b = rand62 () and c = rand62 () in
    Alcotest.(check int) "(ab)c = a(bc)"
      (Gf2k.mul f (Gf2k.mul f a b) c)
      (Gf2k.mul f a (Gf2k.mul f b c))
  done

let test_gf62_distributive () =
  for _ = 1 to 30 do
    let a = rand62 () and b = rand62 () and c = rand62 () in
    Alcotest.(check int) "a(b+c) = ab+ac"
      (Gf2k.mul f a (b lxor c))
      (Gf2k.mul f a b lxor Gf2k.mul f a c)
  done

let test_gf62_step_is_mul_x () =
  for _ = 1 to 50 do
    let a = rand62 () in
    Alcotest.(check int) "step = *x" (Gf2k.mul f a 2) (Gf2k.step f a)
  done

let test_gf62_pow_x_matches_steps () =
  let p = ref 1 in
  for i = 0 to 300 do
    Alcotest.(check int) (Printf.sprintf "x^%d" i) !p (Gf2k.pow_x f i);
    p := Gf2k.step f !p
  done

let test_gf62_pow_laws () =
  let a = rand62 () in
  Alcotest.(check int) "a^0 = 1" 1 (Gf2k.pow f a 0);
  Alcotest.(check int) "a^1 = a" a (Gf2k.pow f a 1);
  Alcotest.(check int) "a^5 = a^2 * a^3"
    (Gf2k.mul f (Gf2k.pow f a 2) (Gf2k.pow f a 3))
    (Gf2k.pow f a 5)

let test_gf62_fermat () =
  (* Nonzero elements form a group of order 2^62 - 1: a^(2^62) = a, which
     we check via 62 squarings. *)
  let a = rand62 () in
  let a = if a = 0 then 1 else a in
  let t = ref a in
  for _ = 1 to 62 do
    t := Gf2k.mul f !t !t
  done;
  Alcotest.(check int) "a^(2^62) = a" a !t

let test_gf62_reducible_rejected () =
  (* Low bits 0 (f = x^62, divisible by x) must fail; even-weight
     polynomials are divisible by (x + 1). *)
  Alcotest.(check bool) "x^62 reducible" false (Gf2k.is_irreducible 0);
  Alcotest.(check bool) "no constant term" false (Gf2k.is_irreducible 6);
  Alcotest.(check bool) "even weight reducible" false (Gf2k.is_irreducible 1)

let test_gf62_random_irreducible () =
  let r = Util.Rng.create 77 in
  for _ = 1 to 3 do
    let m = Gf2k.random_irreducible r in
    Alcotest.(check bool) "sampled modulus passes Rabin" true (Gf2k.is_irreducible m);
    Alcotest.(check int) "odd constant term" 1 (m land 1)
  done

let test_gf62_make_rejects_reducible () =
  Alcotest.check_raises "make rejects x^62" (Invalid_argument "Gf2k.make: reducible modulus")
    (fun () -> ignore (Gf2k.make ~modulus_low:0))

let test_popcount_int () =
  Alcotest.(check int) "zero" 0 (Gf2k.popcount_int 0);
  Alcotest.(check int) "all 62 bits" 62 (Gf2k.popcount_int ((1 lsl 62) - 1));
  Alcotest.(check int) "0xFF" 8 (Gf2k.popcount_int 0xFF);
  for _ = 1 to 200 do
    let x = rand62 () in
    let naive = ref 0 in
    for i = 0 to 61 do
      if (x lsr i) land 1 = 1 then incr naive
    done;
    Alcotest.(check int) "matches naive" !naive (Gf2k.popcount_int x)
  done

let test_parity_int () =
  Alcotest.(check int) "even" 0 (Gf2k.parity_int 0b11);
  Alcotest.(check int) "odd" 1 (Gf2k.parity_int 0b111)

let prop_gf62_mul_linear_in_xor =
  QCheck.Test.make ~name:"gf62 mul is GF(2)-linear" ~count:100
    QCheck.(triple int int int)
    (fun (a, b, c) ->
      let m x = abs x land ((1 lsl 62) - 1) in
      let a = m a and b = m b and c = m c in
      Gf2k.mul f (a lxor b) c = Gf2k.mul f a c lxor Gf2k.mul f b c)

(* --- GF(256) --- *)

let test_gf256_mul_table_vs_naive () =
  (* Naive carry-less multiply mod 0x11D. *)
  let naive a b =
    let acc = ref 0 in
    for i = 7 downto 0 do
      acc := !acc lsl 1;
      if !acc land 0x100 <> 0 then acc := !acc lxor 0x11D;
      if (b lsr i) land 1 = 1 then acc := !acc lxor a
    done;
    !acc
  in
  for _ = 1 to 500 do
    let a = Util.Rng.int rng 256 and b = Util.Rng.int rng 256 in
    Alcotest.(check int) "table mul = naive" (naive a b) (Gf256.mul a b)
  done

let test_gf256_inverse () =
  for a = 1 to 255 do
    Alcotest.(check int) "a * a^-1 = 1" 1 (Gf256.mul a (Gf256.inv a))
  done

let test_gf256_div () =
  for _ = 1 to 200 do
    let a = Util.Rng.int rng 256 and b = 1 + Util.Rng.int rng 255 in
    Alcotest.(check int) "(a/b)*b = a" a (Gf256.mul (Gf256.div a b) b)
  done

let test_gf256_alpha_primitive () =
  (* alpha generates all 255 nonzero elements. *)
  let seen = Array.make 256 false in
  let x = ref 1 in
  for _ = 0 to 254 do
    seen.(!x) <- true;
    x := Gf256.mul !x Gf256.alpha
  done;
  let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 seen in
  Alcotest.(check int) "255 distinct powers" 255 count

let test_gf256_pow () =
  Alcotest.(check int) "a^0" 1 (Gf256.pow 5 0);
  Alcotest.(check int) "0^3" 0 (Gf256.pow 0 3);
  Alcotest.(check int) "a^3 = a*a*a" (Gf256.mul 7 (Gf256.mul 7 7)) (Gf256.pow 7 3)

let test_gf256_alpha_pow_negative () =
  Alcotest.(check int) "alpha^-1 * alpha = 1" 1 (Gf256.mul (Gf256.alpha_pow (-1)) Gf256.alpha);
  Alcotest.(check int) "alpha^255 = 1" 1 (Gf256.alpha_pow 255);
  Alcotest.(check int) "alpha^0 = 1" 1 (Gf256.alpha_pow 0)

let test_gf256_log_exp_roundtrip () =
  for a = 1 to 255 do
    Alcotest.(check int) "alpha^(log a) = a" a (Gf256.alpha_pow (Gf256.log a))
  done

let test_gf256_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Gf256.div 5 0))

let () =
  Alcotest.run "gf"
    [
      ( "gf2k",
        [
          Alcotest.test_case "default irreducible" `Quick test_gf62_default_irreducible;
          Alcotest.test_case "mul identity" `Quick test_gf62_mul_identity;
          Alcotest.test_case "mul commutative" `Quick test_gf62_mul_commutative;
          Alcotest.test_case "mul associative" `Quick test_gf62_mul_associative;
          Alcotest.test_case "distributive" `Quick test_gf62_distributive;
          Alcotest.test_case "step = mul x" `Quick test_gf62_step_is_mul_x;
          Alcotest.test_case "pow_x matches steps" `Quick test_gf62_pow_x_matches_steps;
          Alcotest.test_case "pow laws" `Quick test_gf62_pow_laws;
          Alcotest.test_case "fermat" `Quick test_gf62_fermat;
          Alcotest.test_case "reducible rejected" `Quick test_gf62_reducible_rejected;
          Alcotest.test_case "random irreducible" `Slow test_gf62_random_irreducible;
          Alcotest.test_case "make rejects reducible" `Quick test_gf62_make_rejects_reducible;
          Alcotest.test_case "popcount_int" `Quick test_popcount_int;
          Alcotest.test_case "parity_int" `Quick test_parity_int;
          QCheck_alcotest.to_alcotest prop_gf62_mul_linear_in_xor;
        ] );
      ( "gf256",
        [
          Alcotest.test_case "mul vs naive" `Quick test_gf256_mul_table_vs_naive;
          Alcotest.test_case "inverses" `Quick test_gf256_inverse;
          Alcotest.test_case "division" `Quick test_gf256_div;
          Alcotest.test_case "alpha primitive" `Quick test_gf256_alpha_primitive;
          Alcotest.test_case "pow" `Quick test_gf256_pow;
          Alcotest.test_case "alpha_pow negative" `Quick test_gf256_alpha_pow_negative;
          Alcotest.test_case "log/exp roundtrip" `Quick test_gf256_log_exp_roundtrip;
          Alcotest.test_case "div by zero" `Quick test_gf256_div_by_zero;
        ] );
    ]
