(* Tests for the δ-biased generator: determinism, random access vs
   sequential agreement, seed expansion (the G of Lemma 2.5), and an
   empirical bias check on linear tests. *)

open Smallbias

let test_deterministic () =
  let g1 = Generator.sample (Util.Rng.create 11) in
  let g2 = Generator.create ~f:(fst (Generator.seed g1)) ~s:(snd (Generator.seed g1)) in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same words" (Generator.next_word g1) (Generator.next_word g2)
  done

let test_bit_at_matches_words () =
  let g = Generator.sample (Util.Rng.create 12) in
  let words = Array.init 8 (fun _ -> Generator.next_word g) in
  for i = 0 to (8 * 64) - 1 do
    let from_word = Int64.logand (Int64.shift_right_logical words.(i / 64) (i mod 64)) 1L = 1L in
    Alcotest.(check bool) (Printf.sprintf "bit %d" i) from_word (Generator.bit_at g i)
  done

let test_seek_forward () =
  let g1 = Generator.sample (Util.Rng.create 13) in
  let g2 =
    Generator.create ~f:(fst (Generator.seed g1)) ~s:(snd (Generator.seed g1))
  in
  for _ = 1 to 20 do
    ignore (Generator.next_word g1)
  done;
  Generator.seek_word g2 20;
  Alcotest.(check int64) "seek fwd = sequential" (Generator.next_word g1) (Generator.next_word g2)

let test_seek_far_and_back () =
  let g = Generator.sample (Util.Rng.create 14) in
  Generator.seek_word g 5000;
  let w5000 = Generator.next_word g in
  Generator.seek_word g 0;
  let w0 = Generator.next_word g in
  Generator.seek_word g 5000;
  Alcotest.(check int64) "far seek reproducible" w5000 (Generator.next_word g);
  Generator.seek_word g 0;
  Alcotest.(check int64) "seek back reproducible" w0 (Generator.next_word g)

let test_of_seed_deterministic () =
  let g1 = Generator.of_seed (123L, 456L) in
  let g2 = Generator.of_seed (123L, 456L) in
  Alcotest.(check bool) "same derived seed" true (Generator.seed g1 = Generator.seed g2);
  for _ = 1 to 20 do
    Alcotest.(check int64) "same stream" (Generator.next_word g1) (Generator.next_word g2)
  done

let test_of_seed_valid_modulus () =
  (* Expansion must always land on an irreducible modulus, even for
     degenerate seed bits. *)
  List.iter
    (fun (a, b) ->
      let g = Generator.of_seed (a, b) in
      let f, s = Generator.seed g in
      Alcotest.(check bool) "irreducible" true (Gf.Gf2k.is_irreducible f);
      Alcotest.(check bool) "nonzero state" true (s <> 0))
    [ (0L, 0L); (0L, 1L); (-1L, -1L); (42L, 0L) ]

let test_zero_state_rejected () =
  let f = Gf.Gf2k.modulus_low Gf.Gf2k.default in
  Alcotest.check_raises "zero state" (Invalid_argument "Generator.create: zero start state")
    (fun () -> ignore (Generator.create ~f ~s:0))

let test_streams_differ_across_seeds () =
  let g1 = Generator.sample (Util.Rng.create 15) in
  let g2 = Generator.sample (Util.Rng.create 16) in
  let differ = ref false in
  for _ = 1 to 8 do
    if Generator.next_word g1 <> Generator.next_word g2 then differ := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differ

let test_empirical_balance () =
  (* Each individual output bit is a ±2^-63-biased coin over the seed; over
     one fixed seed, long output stretches should still look balanced. *)
  let g = Generator.sample (Util.Rng.create 17) in
  let ones = ref 0 in
  let words = 2000 in
  for _ = 1 to words do
    ones := !ones + Util.Bitvec.popcount (Generator.next_word g)
  done;
  let p = float_of_int !ones /. float_of_int (words * 64) in
  Alcotest.(check bool) "balanced" true (p > 0.48 && p < 0.52)

let test_empirical_bias_over_seeds () =
  (* Definition 2.4: for a fixed nonzero linear test v over the first 64
     output bits, Pr_seed[⟨v, bits⟩ = 0] must be 1/2 ± δ.  We estimate the
     probability over many random seeds and check it is near 1/2 well
     within sampling error. *)
  let rng = Util.Rng.create 18 in
  let trials = 400 in
  let tests = [ 1L; 0xFFL; Int64.min_int; -1L; 0x123456789ABCDEFL ] in
  List.iter
    (fun v ->
      let zero_count = ref 0 in
      for _ = 1 to trials do
        let g = Generator.sample rng in
        let w = Generator.next_word g in
        if Util.Bitvec.parity64 (Int64.logand v w) = 0 then incr zero_count
      done;
      let p = float_of_int !zero_count /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "linear test %Lx near 1/2 (got %.3f)" v p)
        true
        (p > 0.38 && p < 0.62))
    tests

let prop_word_index_tracks =
  QCheck.Test.make ~name:"word_index tracks next_word/seek" ~count:50
    QCheck.(small_nat)
    (fun n ->
      let g = Generator.sample (Util.Rng.create 19) in
      Generator.seek_word g n;
      let i0 = Generator.word_index g in
      ignore (Generator.next_word g);
      i0 = n && Generator.word_index g = n + 1)

let () =
  Alcotest.run "smallbias"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "bit_at matches words" `Quick test_bit_at_matches_words;
          Alcotest.test_case "seek forward" `Quick test_seek_forward;
          Alcotest.test_case "seek far and back" `Quick test_seek_far_and_back;
          Alcotest.test_case "of_seed deterministic" `Quick test_of_seed_deterministic;
          Alcotest.test_case "of_seed valid modulus" `Slow test_of_seed_valid_modulus;
          Alcotest.test_case "zero state rejected" `Quick test_zero_state_rejected;
          Alcotest.test_case "streams differ" `Quick test_streams_differ_across_seeds;
          Alcotest.test_case "empirical balance" `Quick test_empirical_balance;
          Alcotest.test_case "empirical bias over seeds" `Slow test_empirical_bias_over_seeds;
          QCheck_alcotest.to_alcotest prop_word_index_tracks;
        ] );
    ]
