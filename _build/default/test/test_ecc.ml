(* Tests for the error-correcting codes (Theorem 2.1 substrate):
   polynomial arithmetic, Reed–Solomon error/erasure correction up to the
   designed distance, and the concatenated binary code used by the
   randomness exchange. *)

open Ecc

let rng = Util.Rng.create 0xC0DE

(* --- Poly256 --- *)

let test_poly_add () =
  Alcotest.(check bool) "xor coefficients" true
    (Poly256.add [| 1; 2 |] [| 3; 2; 5 |] = [| 2; 0; 5 |]);
  Alcotest.(check bool) "self-inverse" true (Poly256.is_zero (Poly256.add [| 7; 9 |] [| 7; 9 |]))

let test_poly_mul () =
  (* (x + 1)(x + 1) = x^2 + 1 in characteristic 2. *)
  Alcotest.(check bool) "(x+1)^2" true (Poly256.mul [| 1; 1 |] [| 1; 1 |] = [| 1; 0; 1 |])

let test_poly_divmod () =
  for _ = 1 to 100 do
    let random_poly n = Array.init n (fun _ -> Util.Rng.int rng 256) in
    let a = random_poly (1 + Util.Rng.int rng 20) in
    let b = random_poly (1 + Util.Rng.int rng 10) in
    if not (Poly256.is_zero b) then begin
      let q, r = Poly256.divmod a b in
      let recomposed = Poly256.add (Poly256.mul q b) r in
      Alcotest.(check bool) "a = qb + r" true
        (Poly256.normalize recomposed = Poly256.normalize a);
      Alcotest.(check bool) "deg r < deg b" true (Poly256.degree r < Poly256.degree b)
    end
  done

let test_poly_eval () =
  (* p(x) = 3 + 2x at x=1 is 3 xor 2 = 1. *)
  Alcotest.(check int) "eval at 1" 1 (Poly256.eval [| 3; 2 |] 1);
  Alcotest.(check int) "eval at 0 = constant" 3 (Poly256.eval [| 3; 2 |] 0)

let test_poly_deriv () =
  (* d/dx (a + bx + cx^2 + dx^3) = b + dx^2 over GF(2^m). *)
  Alcotest.(check bool) "derivative" true (Poly256.deriv [| 1; 2; 3; 4 |] = [| 2; 0; 4 |])

(* --- Reed-Solomon --- *)

let random_msg k = Array.init k (fun _ -> Util.Rng.int rng 256)

let corrupt word positions =
  let w = Array.copy word in
  List.iter
    (fun p ->
      let delta = 1 + Util.Rng.int rng 255 in
      w.(p) <- w.(p) lxor delta)
    positions;
  w

let distinct_positions n count =
  let all = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    let t = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- t
  done;
  Array.to_list (Array.sub all 0 count)

let test_rs_roundtrip_clean () =
  let code = Rs.create ~n:48 ~k:16 in
  for _ = 1 to 50 do
    let msg = random_msg 16 in
    let cw = Rs.encode code msg in
    Alcotest.(check bool) "systematic prefix" true (Array.sub cw 0 16 = msg);
    match Rs.decode code cw with
    | Some m -> Alcotest.(check bool) "decode clean" true (m = msg)
    | None -> Alcotest.fail "clean decode failed"
  done

let test_rs_corrects_max_errors () =
  let code = Rs.create ~n:48 ~k:16 in
  let t = (48 - 16) / 2 in
  for _ = 1 to 50 do
    let msg = random_msg 16 in
    let cw = Rs.encode code msg in
    let errs = distinct_positions 48 t in
    match Rs.decode code (corrupt cw errs) with
    | Some m -> Alcotest.(check bool) "decode at distance bound" true (m = msg)
    | None -> Alcotest.fail "decode at t errors failed"
  done

let test_rs_corrects_erasures () =
  let code = Rs.create ~n:48 ~k:16 in
  (* Up to n-k = 32 erasures and no errors. *)
  for _ = 1 to 50 do
    let msg = random_msg 16 in
    let cw = Rs.encode code msg in
    let erasures = distinct_positions 48 32 in
    let received = corrupt cw erasures in
    match Rs.decode code ~erasures received with
    | Some m -> Alcotest.(check bool) "erasure-only decode" true (m = msg)
    | None -> Alcotest.fail "erasure decode failed"
  done

let test_rs_corrects_mixed () =
  let code = Rs.create ~n:48 ~k:16 in
  (* Any 2e + f <= n-k: take f = 10 erasures, e = 11 errors. *)
  for _ = 1 to 50 do
    let msg = random_msg 16 in
    let cw = Rs.encode code msg in
    let positions = distinct_positions 48 21 in
    let erasures = List.filteri (fun i _ -> i < 10) positions in
    let errors = List.filteri (fun i _ -> i >= 10) positions in
    let received = corrupt cw (erasures @ errors) in
    match Rs.decode code ~erasures received with
    | Some m -> Alcotest.(check bool) "mixed decode" true (m = msg)
    | None -> Alcotest.fail "mixed decode failed"
  done

let test_rs_detects_overload () =
  (* Far beyond the distance the decoder must not return a *different*
     codeword silently pretending it is the sent one... bounded-distance
     decoders can miscorrect, but with ~full corruption they should
     usually fail; we only require no crash and a well-typed result. *)
  let code = Rs.create ~n:48 ~k:16 in
  let msg = random_msg 16 in
  let cw = Rs.encode code msg in
  let received = corrupt cw (distinct_positions 48 40) in
  match Rs.decode code received with
  | Some _ | None -> ()

let test_rs_wrong_lengths () =
  let code = Rs.create ~n:10 ~k:4 in
  Alcotest.check_raises "short msg" (Invalid_argument "Rs.encode: wrong message length")
    (fun () -> ignore (Rs.encode code [| 1 |]));
  Alcotest.check_raises "short word" (Invalid_argument "Rs.decode: wrong word length")
    (fun () -> ignore (Rs.decode code [| 1 |]))

let test_rs_small_code () =
  let code = Rs.create ~n:7 ~k:3 in
  let msg = [| 11; 22; 33 |] in
  let cw = Rs.encode code msg in
  let cw' = corrupt cw [ 0; 5 ] in
  match Rs.decode code cw' with
  | Some m -> Alcotest.(check bool) "small code 2 errors" true (m = msg)
  | None -> Alcotest.fail "small code decode failed"

let prop_rs_random_noise_within_distance =
  QCheck.Test.make ~name:"rs corrects any 2e+f <= n-k" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (e_raw, f_raw) ->
      let code = Rs.create ~n:60 ~k:20 in
      let d1 = 40 in
      let f = f_raw mod (d1 + 1) in
      let e = if d1 - f <= 1 then 0 else e_raw mod (((d1 - f) / 2) + 1) in
      let msg = random_msg 20 in
      let cw = Rs.encode code msg in
      let positions = distinct_positions 60 (e + f) in
      let erasures = List.filteri (fun i _ -> i < f) positions in
      let errors = List.filteri (fun i _ -> i >= f) positions in
      match Rs.decode code ~erasures (corrupt cw (erasures @ errors)) with
      | Some m -> m = msg
      | None -> false)

(* --- Concatenated code --- *)

let test_concat_roundtrip () =
  let code = Concat.create ~payload_bytes:16 () in
  let payload = String.init 16 (fun i -> Char.chr ((i * 37) land 0xff)) in
  let bits = Concat.encode code payload in
  Alcotest.(check int) "codeword length" (Concat.codeword_bits code) (Array.length bits);
  let received = Array.map (fun b -> Some b) bits in
  match Concat.decode code received with
  | Some p -> Alcotest.(check string) "clean roundtrip" payload p
  | None -> Alcotest.fail "clean decode failed"

let test_concat_random_flips () =
  let code = Concat.create ~payload_bytes:16 () in
  let payload = String.init 16 (fun i -> Char.chr ((i * 91) land 0xff)) in
  let bits = Concat.encode code payload in
  let nbits = Array.length bits in
  (* Flip 5% of the bits at random — well within the decoding radius. *)
  for _ = 1 to 20 do
    let received = Array.map (fun b -> Some b) bits in
    for _ = 1 to nbits / 20 do
      let i = Util.Rng.int rng nbits in
      received.(i) <- Option.map not received.(i)
    done;
    match Concat.decode code received with
    | Some p -> Alcotest.(check string) "decode with flips" payload p
    | None -> Alcotest.fail "decode with flips failed"
  done

let test_concat_deletions_as_erasures () =
  let code = Concat.create ~payload_bytes:16 () in
  let payload = String.init 16 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let bits = Concat.encode code payload in
  let nbits = Array.length bits in
  for _ = 1 to 20 do
    let received = Array.map (fun b -> Some b) bits in
    (* Delete 20% of transmissions. *)
    for _ = 1 to nbits / 5 do
      received.(Util.Rng.int rng nbits) <- None
    done;
    match Concat.decode code received with
    | Some p -> Alcotest.(check string) "decode with deletions" payload p
    | None -> Alcotest.fail "decode with deletions failed"
  done

let test_concat_mixed_insdel_sub () =
  let code = Concat.create ~payload_bytes:16 () in
  let payload = String.init 16 (fun i -> Char.chr ((i * 201) land 0xff)) in
  let bits = Concat.encode code payload in
  let nbits = Array.length bits in
  for _ = 1 to 20 do
    let received = Array.map (fun b -> Some b) bits in
    for _ = 1 to nbits / 25 do
      let i = Util.Rng.int rng nbits in
      received.(i) <-
        (match Util.Rng.int rng 3 with
        | 0 -> None (* deletion *)
        | 1 -> Some (Util.Rng.bool rng) (* substitution/insertion overwrite *)
        | _ -> Option.map not received.(i))
    done;
    match Concat.decode code received with
    | Some p -> Alcotest.(check string) "decode mixed noise" payload p
    | None -> Alcotest.fail "decode mixed noise failed"
  done

let test_concat_too_much_noise_fails_gracefully () =
  let code = Concat.create ~payload_bytes:16 () in
  let payload = String.make 16 'x' in
  let bits = Concat.encode code payload in
  let received = Array.map (fun _ -> None) bits in
  Alcotest.(check bool) "all-erased fails" true (Concat.decode code received = None)

let test_concat_rate_constant () =
  (* Rate must not degrade with payload size (constant-rate claim). *)
  let r16 = Concat.rate (Concat.create ~payload_bytes:16 ()) in
  let r64 = Concat.rate (Concat.create ~payload_bytes:64 ()) in
  Alcotest.(check (float 1e-9)) "same rate" r16 r64;
  Alcotest.(check bool) "rate is 1/9" true (abs_float (r16 -. (1. /. 9.)) < 1e-9)

let test_concat_invalid_args () =
  Alcotest.check_raises "even rep" (Invalid_argument "Concat.create: rep must be odd and positive")
    (fun () -> ignore (Concat.create ~rep:2 ~payload_bytes:8 ()));
  Alcotest.check_raises "payload too large" (Invalid_argument "Concat.create: payload_bytes")
    (fun () -> ignore (Concat.create ~payload_bytes:200 ()))

let () =
  Alcotest.run "ecc"
    [
      ( "poly256",
        [
          Alcotest.test_case "add" `Quick test_poly_add;
          Alcotest.test_case "mul" `Quick test_poly_mul;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "deriv" `Quick test_poly_deriv;
        ] );
      ( "rs",
        [
          Alcotest.test_case "roundtrip clean" `Quick test_rs_roundtrip_clean;
          Alcotest.test_case "max errors" `Quick test_rs_corrects_max_errors;
          Alcotest.test_case "erasures" `Quick test_rs_corrects_erasures;
          Alcotest.test_case "mixed errors+erasures" `Quick test_rs_corrects_mixed;
          Alcotest.test_case "overload graceful" `Quick test_rs_detects_overload;
          Alcotest.test_case "wrong lengths" `Quick test_rs_wrong_lengths;
          Alcotest.test_case "small code" `Quick test_rs_small_code;
          QCheck_alcotest.to_alcotest prop_rs_random_noise_within_distance;
        ] );
      ( "concat",
        [
          Alcotest.test_case "roundtrip" `Quick test_concat_roundtrip;
          Alcotest.test_case "random flips" `Quick test_concat_random_flips;
          Alcotest.test_case "deletions as erasures" `Quick test_concat_deletions_as_erasures;
          Alcotest.test_case "mixed insdel+sub" `Quick test_concat_mixed_insdel_sub;
          Alcotest.test_case "overload fails gracefully" `Quick test_concat_too_much_noise_fails_gracefully;
          Alcotest.test_case "rate constant" `Quick test_concat_rate_constant;
          Alcotest.test_case "invalid args" `Quick test_concat_invalid_args;
        ] );
    ]
