(* Tests for the noiseless-protocol abstraction, the concrete protocol
   library, and the chunking machinery of §3.2. *)

open Protocol

let rng = Util.Rng.create 0xAB

(* --- concrete protocols compute the right thing --- *)

let test_ring_sum_correct () =
  for _ = 1 to 10 do
    let n = 3 + Util.Rng.int rng 8 in
    let bits = 4 + Util.Rng.int rng 6 in
    let pi = Protocols.ring_sum ~n ~bits in
    Pi.validate pi;
    let inputs = Array.init n (fun _ -> Util.Rng.int rng (1 lsl bits)) in
    let expected = Array.fold_left ( + ) 0 inputs land ((1 lsl bits) - 1) in
    let outputs = Pi.run_noiseless pi ~inputs in
    Array.iteri
      (fun p o -> Alcotest.(check int) (Printf.sprintf "party %d has the sum" p) expected o)
      outputs
  done

let test_broadcast_tree_correct () =
  List.iter
    (fun g ->
      let bits = 8 in
      let pi = Protocols.broadcast_tree g ~bits in
      Pi.validate pi;
      let n = Topology.Graph.n g in
      let inputs = Array.init n (fun i -> 1000 + i) in
      let expected = inputs.(0) land ((1 lsl bits) - 1) in
      let outputs = Pi.run_noiseless pi ~inputs in
      Array.iteri
        (fun p o -> Alcotest.(check int) (Printf.sprintf "party %d got root value" p) expected o)
        outputs)
    [
      Topology.Graph.line 6;
      Topology.Graph.star 6;
      Topology.Graph.binary_tree 7;
      Topology.Graph.random_connected rng ~n:9 ~extra_edges:4;
    ]

let test_pairwise_ip_correct () =
  let g = Topology.Graph.cycle 5 in
  let bits = 6 in
  let pi = Protocols.pairwise_ip g ~bits in
  Pi.validate pi;
  let inputs = Array.init 5 (fun _ -> Util.Rng.int rng (1 lsl bits)) in
  let ip x y = Util.Bitvec.parity64 (Int64.of_int (x land y)) in
  let expected p =
    Array.fold_left
      (fun acc v -> acc lxor ip inputs.(p) inputs.(v))
      0
      (Topology.Graph.neighbors g p)
  in
  let outputs = Pi.run_noiseless pi ~inputs in
  Array.iteri
    (fun p o -> Alcotest.(check int) (Printf.sprintf "party %d ip sum" p) (expected p) o)
    outputs

let test_line_flow_valid_and_deterministic () =
  let pi = Protocols.line_flow ~n:5 ~phases:3 ~chat:4 in
  Pi.validate pi;
  let inputs = [| 1; 2; 3; 4; 5 |] in
  let o1 = Pi.run_noiseless pi ~inputs in
  let o2 = Pi.run_noiseless pi ~inputs in
  Alcotest.(check bool) "deterministic" true (o1 = o2);
  let o3 = Pi.run_noiseless pi ~inputs:[| 1; 2; 3; 4; 6 |] in
  Alcotest.(check bool) "outputs depend on inputs" true (o1 <> o3)

let test_random_chatter_valid () =
  let g = Topology.Graph.random_connected rng ~n:8 ~extra_edges:5 in
  let pi = Protocols.random_chatter g ~rounds:100 ~density:0.4 ~seed:3 in
  Pi.validate pi;
  Alcotest.(check bool) "some communication" true (Pi.cc pi > 0);
  Alcotest.(check bool) "not fully utilised" true (Pi.cc pi < 100 * 2 * Topology.Graph.m g);
  let inputs = Array.init 8 (fun i -> i * 17) in
  Alcotest.(check bool) "deterministic" true
    (Pi.run_noiseless pi ~inputs = Pi.run_noiseless pi ~inputs)

let test_cc_counts_transmissions () =
  let pi = Protocols.ring_sum ~n:4 ~bits:5 in
  (* 2 laps * 4 hops * 5 bits = 40 transmissions. *)
  Alcotest.(check int) "cc" 40 (Pi.cc pi)

let test_validate_catches_bad_schedule () =
  let g = Topology.Graph.line 3 in
  let bad =
    Pi.
      {
        graph = g;
        rounds = 1;
        sends_at = (fun _ -> [ (0, 2) ]);
        spawn = (fun ~party:_ ~input -> Protocols.random_chatter g ~rounds:1 ~density:0. ~seed:0
                                        |> fun p -> p.Pi.spawn ~party:0 ~input);
      }
  in
  match Pi.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

(* --- chunking --- *)

let check_chunking pi k =
  let ch = Chunking.make pi ~k in
  let g = pi.Pi.graph in
  let m = Topology.Graph.m g in
  let k5 = 5 * k in
  (* 1. Every chunk (real and dummy) carries exactly 5K transmissions. *)
  for i = 1 to Chunking.n_real ch + 2 do
    let c = Chunking.chunk ch i in
    let comm = Array.fold_left (fun acc slots -> acc + List.length slots) 0 c.Chunking.rounds in
    Alcotest.(check int) (Printf.sprintf "chunk %d has 5K bits" i) k5 comm;
    Alcotest.(check bool) "chunk fits in max_rounds" true
      (Array.length c.Chunking.rounds <= Chunking.max_rounds ch);
    (* 2. Each directed link appears at least once per chunk, so every
       party sends at least one bit to each neighbor. *)
    let dir_count = Hashtbl.create 16 in
    Array.iter
      (List.iter (fun s ->
           let key = (s.Chunking.src, s.Chunking.dst) in
           Hashtbl.replace dir_count key (1 + Option.value ~default:0 (Hashtbl.find_opt dir_count key))))
      c.Chunking.rounds;
    Array.iter
      (fun (u, v) ->
        Alcotest.(check bool) "dir u->v present" true (Hashtbl.mem dir_count (min u v, max u v));
        Alcotest.(check bool) "dir v->u present" true (Hashtbl.mem dir_count (max u v, min u v)))
      (Topology.Graph.edges g)
  done;
  (* 3. Real rounds are all present exactly once, in order. *)
  let seen = ref [] in
  for i = 1 to Chunking.n_real ch do
    Array.iter
      (List.iter (fun s ->
           match s.Chunking.pi_round with Some r -> seen := r :: !seen | None -> ()))
      (Chunking.chunk ch i).Chunking.rounds
  done;
  let rounds_seen = List.sort_uniq compare !seen in
  let expected_rounds =
    List.filter (fun r -> pi.Pi.sends_at r <> []) (List.init pi.Pi.rounds (fun r -> r))
  in
  Alcotest.(check (list int)) "all protocol rounds chunked" expected_rounds rounds_seen;
  (* 4. Per-link event layout is consistent with the schedule. *)
  for e = 0 to m - 1 do
    let slots = Chunking.link_slots ch ~chunk_index:1 ~edge:e in
    Alcotest.(check int) "events count matches"
      (Array.length slots)
      (Chunking.events_on_link ch ~chunk_index:1 ~edge:e);
    Array.iter
      (fun (_, src, dst) ->
        Alcotest.(check int) "slots belong to the edge" e (Topology.Graph.edge_id g src dst))
      slots
  done;
  ch

let test_chunking_ring () =
  let pi = Protocols.ring_sum ~n:5 ~bits:8 in
  let ch = check_chunking pi (Topology.Graph.m pi.Pi.graph) in
  Alcotest.(check bool) "multiple chunks" true (Chunking.n_real ch >= 1)

let test_chunking_random_chatter () =
  let g = Topology.Graph.random_connected rng ~n:7 ~extra_edges:4 in
  let pi = Protocols.random_chatter g ~rounds:200 ~density:0.5 ~seed:9 in
  ignore (check_chunking pi (Topology.Graph.m g))

let test_chunking_k_larger_than_m () =
  let pi = Protocols.ring_sum ~n:4 ~bits:6 in
  ignore (check_chunking pi (3 * Topology.Graph.m pi.Pi.graph))

let test_chunking_rejects_small_k () =
  let pi = Protocols.ring_sum ~n:5 ~bits:4 in
  Alcotest.check_raises "k < m" (Invalid_argument "Chunking.make: k < m") (fun () ->
      ignore (Chunking.make pi ~k:(Topology.Graph.m pi.Pi.graph - 1)))

let test_serialized_bits () =
  let pi = Protocols.ring_sum ~n:4 ~bits:6 in
  let ch = Chunking.make pi ~k:(Topology.Graph.m pi.Pi.graph) in
  for e = 0 to Topology.Graph.m pi.Pi.graph - 1 do
    Alcotest.(check int) "header + 2 bits per event"
      (32 + (2 * Chunking.events_on_link ch ~chunk_index:1 ~edge:e))
      (Chunking.serialized_chunk_bits ch ~chunk_index:1 ~edge:e)
  done;
  Alcotest.(check bool) "word bound positive" true (Chunking.max_transcript_words ch ~horizon:10 > 0);
  Alcotest.(check bool) "word bound monotone" true
    (Chunking.max_transcript_words ch ~horizon:20 >= Chunking.max_transcript_words ch ~horizon:10)

let prop_link_slots_partition_chunk =
  (* The per-link slot views partition the chunk's transmissions: summing
     events_on_link over all edges recovers exactly 5K, for real and
     dummy chunks alike. *)
  QCheck.Test.make ~name:"link slots partition each chunk" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let r = Util.Rng.create ((a * 977) + b) in
      let n = 4 + (a mod 6) in
      let g = Topology.Graph.random_connected r ~n ~extra_edges:(b mod 5) in
      let pi = Protocols.random_chatter g ~rounds:(40 + (b mod 60)) ~density:0.4 ~seed:b in
      let k = Topology.Graph.m g in
      let ch = Chunking.make pi ~k in
      let ok = ref true in
      for c = 1 to Chunking.n_real ch + 1 do
        let total = ref 0 in
        for e = 0 to Topology.Graph.m g - 1 do
          total := !total + Chunking.events_on_link ch ~chunk_index:c ~edge:e
        done;
        ok := !ok && !total = 5 * k
      done;
      !ok)

let test_link_slots_full_pads_marked () =
  let pi = Protocols.ring_sum ~n:4 ~bits:6 in
  let ch = Chunking.make pi ~k:(Topology.Graph.m pi.Pi.graph) in
  (* Dummy chunks are pure padding; real chunks end in padding. *)
  let dummy = Chunking.link_slots_full ch ~chunk_index:(Chunking.n_real ch + 1) ~edge:0 in
  Alcotest.(check bool) "dummy chunk all pads" true
    (Array.for_all (fun (_, _, _, pad) -> pad) dummy);
  let real = Chunking.link_slots_full ch ~chunk_index:1 ~edge:0 in
  let n = Array.length real in
  Alcotest.(check bool) "real chunk ends with a pad" true
    (n > 0 && (fun (_, _, _, pad) -> pad) real.(n - 1));
  Alcotest.(check bool) "slot views agree" true
    (Array.map (fun (r, s, d, _) -> (r, s, d)) real = Chunking.link_slots ch ~chunk_index:1 ~edge:0)

let prop_chunking_exact_5k =
  QCheck.Test.make ~name:"chunks are exactly 5K on random graphs" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let r = Util.Rng.create ((a * 131) + b) in
      let n = 4 + (a mod 8) in
      let g = Topology.Graph.random_connected r ~n ~extra_edges:(b mod 6) in
      let pi = Protocols.random_chatter g ~rounds:(50 + (b mod 100)) ~density:0.3 ~seed:a in
      let k = Topology.Graph.m g in
      let ch = Chunking.make pi ~k in
      let ok = ref true in
      for i = 1 to Chunking.n_real ch + 1 do
        let c = Chunking.chunk ch i in
        let comm = Array.fold_left (fun acc s -> acc + List.length s) 0 c.Chunking.rounds in
        ok := !ok && comm = 5 * k
      done;
      !ok)

let () =
  Alcotest.run "protocol"
    [
      ( "protocols",
        [
          Alcotest.test_case "ring sum" `Quick test_ring_sum_correct;
          Alcotest.test_case "broadcast tree" `Quick test_broadcast_tree_correct;
          Alcotest.test_case "pairwise ip" `Quick test_pairwise_ip_correct;
          Alcotest.test_case "line flow" `Quick test_line_flow_valid_and_deterministic;
          Alcotest.test_case "random chatter" `Quick test_random_chatter_valid;
          Alcotest.test_case "cc" `Quick test_cc_counts_transmissions;
          Alcotest.test_case "validate" `Quick test_validate_catches_bad_schedule;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "ring" `Quick test_chunking_ring;
          Alcotest.test_case "random chatter" `Quick test_chunking_random_chatter;
          Alcotest.test_case "k > m" `Quick test_chunking_k_larger_than_m;
          Alcotest.test_case "rejects small k" `Quick test_chunking_rejects_small_k;
          Alcotest.test_case "serialized bits" `Quick test_serialized_bits;
          QCheck_alcotest.to_alcotest prop_chunking_exact_5k;
          QCheck_alcotest.to_alcotest prop_link_slots_partition_chunk;
          Alcotest.test_case "pad slots marked" `Quick test_link_slots_full_pads_marked;
        ] );
    ]
