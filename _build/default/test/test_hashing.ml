(* Tests for seed streams and the inner-product hash: determinism,
   linearity, and the 2^-τ collision bound of Lemma 2.3 (checked
   empirically for uniform and δ-biased seeds — the δ-biased case is the
   content of Lemma 2.6). *)

open Hashing

let mk_input rng len =
  let v = Util.Bitvec.create () in
  for _ = 1 to len do
    Util.Bitvec.push v (Util.Rng.bool rng)
  done;
  v

let test_uniform_stream_pure () =
  let s = Seed_stream.uniform ~key:42L in
  Alcotest.(check int64) "pure" (Seed_stream.word s 7) (Seed_stream.word s 7);
  Alcotest.(check bool) "varies" true (Seed_stream.word s 7 <> Seed_stream.word s 8)

let test_explicit_stream () =
  let s = Seed_stream.explicit [| 1L; 2L |] in
  Alcotest.(check int64) "word 0" 1L (Seed_stream.word s 0);
  Alcotest.(check int64) "word 1" 2L (Seed_stream.word s 1);
  Alcotest.(check int64) "out of range" 0L (Seed_stream.word s 2)

let test_biased_stream_matches_generator () =
  let g1 = Smallbias.Generator.sample (Util.Rng.create 5) in
  let f, st = Smallbias.Generator.seed g1 in
  let g2 = Smallbias.Generator.create ~f ~s:st in
  let stream = Seed_stream.biased g2 in
  let direct = Array.init 10 (fun _ -> Smallbias.Generator.next_word g1) in
  (* Access out of order to exercise seeking and caching. *)
  Alcotest.(check int64) "word 5" direct.(5) (Seed_stream.word stream 5);
  Alcotest.(check int64) "word 0" direct.(0) (Seed_stream.word stream 0);
  Alcotest.(check int64) "word 9" direct.(9) (Seed_stream.word stream 9);
  Alcotest.(check int64) "word 5 cached" direct.(5) (Seed_stream.word stream 5)

let test_hash_deterministic () =
  let rng = Util.Rng.create 1 in
  let x = mk_input rng 300 in
  let s = Seed_stream.uniform ~key:9L in
  Alcotest.(check int) "same hash" (Ip_hash.hash s ~offset:0 ~tau:10 x)
    (Ip_hash.hash s ~offset:0 ~tau:10 x)

let test_hash_equal_inputs_equal_hashes () =
  let rng = Util.Rng.create 2 in
  let x = mk_input rng 500 in
  let y = Util.Bitvec.copy x in
  let s = Seed_stream.uniform ~key:10L in
  Alcotest.(check int) "copies hash equal" (Ip_hash.hash s ~offset:3 ~tau:12 x)
    (Ip_hash.hash s ~offset:3 ~tau:12 y)

let test_hash_offset_changes_hash () =
  let rng = Util.Rng.create 3 in
  let x = mk_input rng 500 in
  let s = Seed_stream.uniform ~key:11L in
  Alcotest.(check bool) "different offsets differ" true
    (Ip_hash.hash s ~offset:0 ~tau:16 x <> Ip_hash.hash s ~offset:1000 ~tau:16 x)

let test_hash_range () =
  let rng = Util.Rng.create 4 in
  let s = Seed_stream.uniform ~key:12L in
  for _ = 1 to 50 do
    let x = mk_input rng (1 + Util.Rng.int rng 200) in
    let h = Ip_hash.hash s ~offset:0 ~tau:6 x in
    Alcotest.(check bool) "tau bits" true (h >= 0 && h < 64)
  done

let test_hash_empty_input () =
  let s = Seed_stream.uniform ~key:13L in
  Alcotest.(check int) "empty hashes to 0" 0 (Ip_hash.hash s ~offset:0 ~tau:8 (Util.Bitvec.create ()))

let test_hash_linearity () =
  (* Inner-product hash is GF(2)-linear: h(x xor y) = h(x) xor h(y) for
     same-length inputs with the same seed. *)
  let rng = Util.Rng.create 6 in
  let s = Seed_stream.uniform ~key:14L in
  for _ = 1 to 20 do
    let len = 64 + Util.Rng.int rng 300 in
    let x = mk_input rng len and y = mk_input rng len in
    let xy = Util.Bitvec.create () in
    for i = 0 to len - 1 do
      Util.Bitvec.push xy (Util.Bitvec.get x i <> Util.Bitvec.get y i)
    done;
    Alcotest.(check int) "linear"
      (Ip_hash.hash s ~offset:0 ~tau:16 x lxor Ip_hash.hash s ~offset:0 ~tau:16 y)
      (Ip_hash.hash s ~offset:0 ~tau:16 xy)
  done

let collision_rate mk_stream ~tau ~trials =
  (* Estimate Pr[h(x) = h(y)] for a fixed pair x ≠ y over random seeds. *)
  let rng = Util.Rng.create 7 in
  let x = mk_input rng 256 in
  let y = Util.Bitvec.copy x in
  (* Flip one bit so inputs differ. *)
  let y' = Util.Bitvec.create () in
  for i = 0 to Util.Bitvec.length y - 1 do
    Util.Bitvec.push y' (if i = 100 then not (Util.Bitvec.get y i) else Util.Bitvec.get y i)
  done;
  let collisions = ref 0 in
  for t = 1 to trials do
    let s = mk_stream t in
    if Ip_hash.hash s ~offset:0 ~tau x = Ip_hash.hash s ~offset:0 ~tau y' then incr collisions
  done;
  float_of_int !collisions /. float_of_int trials

let test_collision_rate_uniform () =
  (* τ = 2 ⇒ collision probability exactly 1/4 (Lemma 2.3). *)
  let p = collision_rate (fun t -> Seed_stream.uniform ~key:(Int64.of_int (t * 7919))) ~tau:2 ~trials:2000 in
  Alcotest.(check bool) (Printf.sprintf "rate near 1/4 (got %.3f)" p) true (p > 0.2 && p < 0.3)

let test_collision_rate_biased () =
  (* Lemma 2.6: with δ-biased seeds the collision rate is within δ of the
     uniform case; empirically indistinguishable from 1/4 at τ = 2. *)
  let seeds = Util.Rng.create 8 in
  let p =
    collision_rate
      (fun _ -> Seed_stream.biased (Smallbias.Generator.sample seeds))
      ~tau:2 ~trials:2000
  in
  Alcotest.(check bool) (Printf.sprintf "rate near 1/4 (got %.3f)" p) true (p > 0.2 && p < 0.3)

let test_collision_rate_drops_with_tau () =
  let p8 = collision_rate (fun t -> Seed_stream.uniform ~key:(Int64.of_int (t * 104729))) ~tau:8 ~trials:2000 in
  Alcotest.(check bool) (Printf.sprintf "tau=8 rate small (got %.4f)" p8) true (p8 < 0.02)

let test_hash_int () =
  let s = Seed_stream.uniform ~key:15L in
  Alcotest.(check int) "pure" (Ip_hash.hash_int s ~offset:0 ~tau:8 123)
    (Ip_hash.hash_int s ~offset:0 ~tau:8 123);
  Alcotest.(check bool) "values differ" true
    (Ip_hash.hash_int s ~offset:0 ~tau:16 123 <> Ip_hash.hash_int s ~offset:0 ~tau:16 124);
  Alcotest.(check int) "zero hashes to zero" 0 (Ip_hash.hash_int s ~offset:0 ~tau:8 0)

let test_words_cost () =
  Alcotest.(check int) "cost" 80 (Ip_hash.words_cost ~tau:8 ~max_input_words:10);
  Alcotest.(check int) "cost of empty input" 8 (Ip_hash.words_cost ~tau:8 ~max_input_words:0)

let prop_prefix_sensitivity =
  (* Hashes of a string and of a strict prefix may collide only with small
     probability over seeds — but note h(x) = h(x ∘ 0) structurally; we
     only test prefixes that remove a set bit. *)
  QCheck.Test.make ~name:"prefix with removed one-bit usually differs" ~count:100
    QCheck.small_nat (fun salt ->
      let x = Util.Bitvec.create () in
      for _ = 1 to 100 do
        Util.Bitvec.push x true
      done;
      let y = Util.Bitvec.copy x in
      Util.Bitvec.truncate y 99;
      let s = Seed_stream.uniform ~key:(Int64.of_int (salt + 1)) in
      (* τ = 16: collision chance 2^-16 per trial; over 100 trials the
         failure chance is ~0.2%. We allow collision (return true) but
         count mismatches dominating. *)
      Ip_hash.hash s ~offset:0 ~tau:16 x <> Ip_hash.hash s ~offset:0 ~tau:16 y
      || Ip_hash.hash s ~offset:64 ~tau:16 x <> Ip_hash.hash s ~offset:64 ~tau:16 y)

let () =
  Alcotest.run "hashing"
    [
      ( "seed_stream",
        [
          Alcotest.test_case "uniform pure" `Quick test_uniform_stream_pure;
          Alcotest.test_case "explicit" `Quick test_explicit_stream;
          Alcotest.test_case "biased matches generator" `Quick test_biased_stream_matches_generator;
        ] );
      ( "ip_hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "equal inputs equal hashes" `Quick test_hash_equal_inputs_equal_hashes;
          Alcotest.test_case "offset changes hash" `Quick test_hash_offset_changes_hash;
          Alcotest.test_case "range" `Quick test_hash_range;
          Alcotest.test_case "empty input" `Quick test_hash_empty_input;
          Alcotest.test_case "linearity" `Quick test_hash_linearity;
          Alcotest.test_case "collision rate uniform" `Slow test_collision_rate_uniform;
          Alcotest.test_case "collision rate biased" `Slow test_collision_rate_biased;
          Alcotest.test_case "collision rate drops with tau" `Slow test_collision_rate_drops_with_tau;
          Alcotest.test_case "hash_int" `Quick test_hash_int;
          Alcotest.test_case "words_cost" `Quick test_words_cost;
          QCheck_alcotest.to_alcotest prop_prefix_sensitivity;
        ] );
    ]
