test/test_netsim.ml: Adversary Alcotest List Netsim Network Printf QCheck QCheck_alcotest Topology Util
