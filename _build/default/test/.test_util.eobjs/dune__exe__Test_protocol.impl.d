test/test_protocol.ml: Alcotest Array Chunking Hashtbl Int64 List Option Pi Printf Protocol Protocols QCheck QCheck_alcotest Topology Util
