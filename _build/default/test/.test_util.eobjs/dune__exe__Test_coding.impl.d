test/test_coding.ml: Alcotest Array Coding Hashing Hashtbl List Netsim Option Printf Protocol QCheck QCheck_alcotest Smallbias Topology Util
