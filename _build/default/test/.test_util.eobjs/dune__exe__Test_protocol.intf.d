test/test_protocol.mli:
