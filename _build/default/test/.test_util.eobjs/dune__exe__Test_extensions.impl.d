test/test_extensions.ml: Alcotest Array Coding Hashing List Netsim Printf Protocol QCheck QCheck_alcotest Topology Util
