test/test_smallbias.mli:
