test/test_topology.ml: Alcotest Array Graph Hashtbl List QCheck QCheck_alcotest Topology Util
