test/test_smallbias.ml: Alcotest Array Generator Gf Int64 List Printf QCheck QCheck_alcotest Smallbias Util
