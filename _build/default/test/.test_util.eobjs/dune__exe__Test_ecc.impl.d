test/test_ecc.ml: Alcotest Array Char Concat Ecc List Option Poly256 QCheck QCheck_alcotest Rs String Util
