test/test_gf.mli:
