test/test_gf.ml: Alcotest Array Gf Gf256 Gf2k Int64 Printf QCheck QCheck_alcotest Util
