test/test_hashing.ml: Alcotest Array Hashing Int64 Ip_hash Printf QCheck QCheck_alcotest Seed_stream Smallbias Util
