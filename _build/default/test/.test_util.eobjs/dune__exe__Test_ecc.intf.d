test/test_ecc.mli:
