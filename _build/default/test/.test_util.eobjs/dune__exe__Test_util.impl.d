test/test_util.ml: Alcotest Array Bitvec Int64 List Printf QCheck QCheck_alcotest Rng Stats Util
