test/test_topology.mli:
