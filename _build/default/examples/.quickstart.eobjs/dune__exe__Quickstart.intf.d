examples/quickstart.mli:
