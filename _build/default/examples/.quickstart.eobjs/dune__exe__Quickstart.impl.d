examples/quickstart.ml: Array Coding Format List Netsim Protocol String Topology Util
