examples/line_cascade.ml: Coding Format List Netsim Protocol Topology Util
