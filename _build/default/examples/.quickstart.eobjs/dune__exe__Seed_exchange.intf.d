examples/seed_exchange.mli:
