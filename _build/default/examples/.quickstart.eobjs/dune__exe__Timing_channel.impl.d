examples/timing_channel.ml: Format List Netsim String Topology
