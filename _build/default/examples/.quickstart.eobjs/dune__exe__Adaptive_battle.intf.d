examples/adaptive_battle.mli:
