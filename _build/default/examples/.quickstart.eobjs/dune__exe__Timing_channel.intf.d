examples/timing_channel.mli:
