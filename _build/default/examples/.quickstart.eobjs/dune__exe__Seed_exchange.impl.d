examples/seed_exchange.ml: Array Coding Format Hashing List Netsim Smallbias Topology Util
