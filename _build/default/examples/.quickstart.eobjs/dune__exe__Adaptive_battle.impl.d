examples/adaptive_battle.ml: Coding Format Protocol Topology Util
