examples/line_cascade.mli:
