(* E9 — Theorem 2.1 substrate: the concatenated binary code.

   Sweep the per-bit corruption probability of the randomness-exchange
   codeword under the three noise types and report decode success.  The
   theorem's shape: a constant decoding radius — success stays ~100% up
   to a constant fraction of corrupted bits, then collapses; deletions
   (erasures) are cheaper to correct than substitutions, 2e + f <= d-1. *)

let run () =
  Exp_common.heading "E9  |  ECC of Theorem 2.1: decode success vs noise (RS[48,16] x rep-3)";
  let code = Ecc.Concat.create ~payload_bytes:16 () in
  let nbits = Ecc.Concat.codeword_bits code in
  let trials = 60 in
  Format.printf "codeword %d bits, rate %.3f@.@." nbits (Ecc.Concat.rate code);
  Format.printf "%-10s | %-12s %-12s %-12s@." "bit noise" "flips" "deletions" "mixed";
  Format.printf "%s@." (String.make 52 '-');
  let rng = Util.Rng.create 0xE9 in
  let payload t = String.init 16 (fun i -> Char.chr ((i * 37 + t) land 0xff)) in
  let attempt p kind t =
    let pl = payload t in
    let bits = Ecc.Concat.encode code pl in
    let received =
      Array.map
        (fun b ->
          if Util.Rng.float rng < p then
            match kind with
            | `Flip -> Some (not b)
            | `Delete -> None
            | `Mixed -> if Util.Rng.bool rng then Some (not b) else None
          else Some b)
        bits
    in
    Ecc.Concat.decode code received = Some pl
  in
  List.iter
    (fun p ->
      let rate kind =
        let ok = ref 0 in
        for t = 1 to trials do
          if attempt p kind t then incr ok
        done;
        100. *. float_of_int !ok /. float_of_int trials
      in
      Format.printf "%-10.2f | %10.0f%% %11.0f%% %11.0f%%@." p (rate `Flip) (rate `Delete)
        (rate `Mixed))
    [ 0.0; 0.02; 0.05; 0.08; 0.11; 0.14; 0.18; 0.25; 0.35 ];
  Format.printf "@.Constant decoding radius: ~100%% below it, collapse above; deletions@.";
  Format.printf "(= erasures at known rounds, footnote 9) are corrected at ~2x the rate@.";
  Format.printf "of substitutions, as 2e + f <= n - k predicts.@."
