bench/exp_t1.ml: Coding Exp_common Format List Netsim Protocol String Topology Util
