bench/main.mli:
