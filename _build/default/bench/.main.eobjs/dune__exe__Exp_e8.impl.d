bench/exp_e8.ml: Coding Exp_common Format Hashing Int64 List Netsim Smallbias String Topology Util
