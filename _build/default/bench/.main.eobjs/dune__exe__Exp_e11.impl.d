bench/exp_e11.ml: Coding Exp_common Format List Netsim Protocol String Topology Util
