bench/exp_e14.ml: Coding Exp_common Format List String Topology Util
