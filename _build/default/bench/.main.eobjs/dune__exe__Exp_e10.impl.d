bench/exp_e10.ml: Coding Exp_common Format List Netsim String Topology Util
