bench/exp_common.ml: Coding Format Protocol String Unix Util
