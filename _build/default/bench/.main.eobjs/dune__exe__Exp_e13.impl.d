bench/exp_e13.ml: Coding Exp_common Format List Netsim String Topology Util
