bench/exp_e9.ml: Array Char Ecc Exp_common Format List String Util
