bench/exp_e2.ml: Coding Exp_common Format List Netsim String Topology Util
