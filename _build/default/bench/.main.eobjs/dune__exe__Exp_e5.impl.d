bench/exp_e5.ml: Coding Exp_common Format List Netsim Protocol Topology Util
