bench/exp_e7.ml: Coding Exp_common Format List String Topology Util
