bench/exp_e3.ml: Coding Exp_common Format List Netsim String Topology Util
