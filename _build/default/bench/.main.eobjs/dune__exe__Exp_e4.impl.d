bench/exp_e4.ml: Coding Exp_common Format List Netsim Protocol String Topology Util
