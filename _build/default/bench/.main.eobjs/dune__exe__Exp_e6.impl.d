bench/exp_e6.ml: Coding Exp_common Format Int64 Netsim Protocol String Topology Util
