bench/exp_e12.ml: Coding Exp_common Format List Netsim Protocol String Topology Util
