(* Shared plumbing for the experiment harness: trial runners and table
   printing.  Every experiment prints a self-contained table whose rows
   mirror what the paper reports (see DESIGN.md §3 and EXPERIMENTS.md). *)

type summary = {
  trials : int;
  successes : int;
  mean_blowup : float;
  mean_fraction : float;  (* measured corruption fraction of the coded run *)
  mean_iters : float;
  wall : float;  (* seconds for all trials *)
}

let success_pct s = 100. *. float_of_int s.successes /. float_of_int (max 1 s.trials)

(* Run [trials] independent executions; the callback gets the trial index
   and must build fresh adversary/rng state from it. *)
let run_trials ~trials (f : int -> Coding.Scheme.result) =
  let t0 = Unix.gettimeofday () in
  let successes = ref 0 in
  let blowups = ref [] and fractions = ref [] and iters = ref [] in
  for t = 0 to trials - 1 do
    let r = f t in
    if r.Coding.Scheme.success then incr successes;
    blowups := r.Coding.Scheme.rate_blowup :: !blowups;
    fractions := r.Coding.Scheme.noise_fraction :: !fractions;
    iters := float_of_int r.Coding.Scheme.iterations_run :: !iters
  done;
  {
    trials;
    successes = !successes;
    mean_blowup = Util.Stats.mean !blowups;
    mean_fraction = Util.Stats.mean !fractions;
    mean_iters = Util.Stats.mean !iters;
    wall = Unix.gettimeofday () -. t0;
  }

let heading title =
  Format.printf "@.==============================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==============================================================================@."

let subheading s = Format.printf "@.--- %s ---@." s

(* Standard workload used across experiments unless stated otherwise: a
   sparse pseudorandom protocol whose outputs are avalanche digests, so
   that any uncorrected corruption is visible. *)
let workload ?(rounds = 300) ?(density = 0.5) ?(seed = 3) graph =
  Protocol.Protocols.random_chatter graph ~rounds ~density ~seed

let bar ?(width = 30) fraction =
  let n = int_of_float (fraction *. float_of_int width) in
  String.init width (fun i -> if i < n then '#' else '.')
