(* MICRO — computational efficiency (the paper's headline qualifier:
   the first *efficient* multiparty scheme against adversarial noise).

   Bechamel micro-benchmarks of every hot primitive, plus one full
   scheme iteration.  Prior schemes rely on tree codes with no known
   polynomial-time construction; every operation below is
   low-polynomial, and the numbers let a reader estimate wall-clock for
   any configuration. *)

open Bechamel
open Toolkit

let make_tests () =
  let rng = Util.Rng.create 0xBEC in
  (* GF(2^62) multiplication *)
  let f = Gf.Gf2k.default in
  let a = Int64.to_int (Util.Rng.int64 rng) land ((1 lsl 62) - 1) in
  let b = Int64.to_int (Util.Rng.int64 rng) land ((1 lsl 62) - 1) in
  let t_gfmul = Test.make ~name:"gf2k.mul" (Staged.stage (fun () -> Gf.Gf2k.mul f a b)) in
  (* δ-biased generator words *)
  let gen = Smallbias.Generator.sample rng in
  ignore (Smallbias.Generator.next_word gen);
  let t_word =
    Test.make ~name:"smallbias.next_word" (Staged.stage (fun () -> Smallbias.Generator.next_word gen))
  in
  (* inner-product hash of a 1 KiB input, tau = 8 *)
  let x = Util.Bitvec.create () in
  for _ = 1 to 8192 do
    Util.Bitvec.push x (Util.Rng.bool rng)
  done;
  let ustream = Hashing.Seed_stream.uniform ~key:42L in
  let t_hash_uniform =
    Test.make ~name:"ip_hash 1KiB (uniform seed)"
      (Staged.stage (fun () -> Hashing.Ip_hash.hash ustream ~offset:0 ~tau:8 x))
  in
  let bstream = Hashing.Seed_stream.biased (Smallbias.Generator.sample rng) in
  let t_hash_biased =
    Test.make ~name:"ip_hash 1KiB (biased seed)"
      (Staged.stage (fun () -> Hashing.Ip_hash.hash bstream ~offset:0 ~tau:8 x))
  in
  (* Reed-Solomon round trip *)
  let rs = Ecc.Rs.create ~n:48 ~k:16 in
  let msg = Array.init 16 (fun i -> (i * 37) land 0xff) in
  let cw = Ecc.Rs.encode rs msg in
  let corrupted = Array.copy cw in
  corrupted.(3) <- corrupted.(3) lxor 0x55;
  corrupted.(20) <- corrupted.(20) lxor 0x0F;
  let t_rs_enc = Test.make ~name:"rs[48,16] encode" (Staged.stage (fun () -> Ecc.Rs.encode rs msg)) in
  let t_rs_dec =
    Test.make ~name:"rs[48,16] decode (2 errors)"
      (Staged.stage (fun () -> Ecc.Rs.decode rs corrupted))
  in
  (* One full scheme run on a small instance *)
  let g = Topology.Graph.cycle 5 in
  let pi = Protocol.Protocols.ring_sum ~n:5 ~bits:8 in
  let params = Coding.Params.algorithm_1 g in
  let t_scheme =
    Test.make ~name:"full Algorithm 1 run (ring, 2 chunks)"
      (Staged.stage (fun () ->
           Coding.Scheme.run ~rng:(Util.Rng.create 5) params pi Netsim.Adversary.Silent))
  in
  [ t_gfmul; t_word; t_hash_uniform; t_hash_biased; t_rs_enc; t_rs_dec; t_scheme ]

let run () =
  Exp_common.heading "MICRO |  primitive costs (Bechamel, monotonic clock, ns/run)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~stabilize:false ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Format.printf "%-40s %15s@." "operation" "time / run";
  Format.printf "%s@." (String.make 58 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ]) in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with Some [ e ] -> e | _ -> nan
          in
          let pretty =
            if estimate > 1e9 then Format.asprintf "%.2f s" (estimate /. 1e9)
            else if estimate > 1e6 then Format.asprintf "%.2f ms" (estimate /. 1e6)
            else if estimate > 1e3 then Format.asprintf "%.2f us" (estimate /. 1e3)
            else Format.asprintf "%.1f ns" estimate
          in
          Format.printf "%-40s %15s@." name pretty)
        results)
    (make_tests ())
