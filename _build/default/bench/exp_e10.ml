(* E10 — Appendix B: Algorithm C, non-oblivious noise with pre-shared
   randomness, resilient to eps/(m log log m) — strictly more noise than
   Algorithm B's eps/(m log m) at the same constant rate.

   We sweep an adaptive noise budget (mixed attack: simulation + MP
   traffic on random links) against B and C at the same chunking-relative
   budgets.  Expected shape: both survive small budgets; as the budget
   rises, B — which pays for a K = m log m chunk against a budget
   accounted per m log m — falls before C does at budgets between the
   two thresholds. *)

let trials = 5

let run () =
  Exp_common.heading "E10 |  Appendix B: Algorithm C between A and B (cycle, m = 8)";
  let g = Topology.Graph.cycle 8 in
  let pi = Exp_common.workload ~rounds:250 g in
  Format.printf "%-16s | %-26s | %-26s@." "attack budget" "Algorithm B (exchange)"
    "Algorithm C (pre-shared)";
  Format.printf "%s@." (String.make 76 '-');
  List.iter
    (fun rate_denom ->
      let s params base =
        Exp_common.run_trials ~trials (fun t ->
            Coding.Scheme.run ~rng:(Util.Rng.create (base + t)) params pi
              (Netsim.Adversary.adaptive_phase_attack ~rate_denom
                 ~phases:[ Netsim.Adversary.Simulation; Netsim.Adversary.Meeting_points ]
                 (Util.Rng.create (base + t + 17))))
      in
      let sb = s (Coding.Params.algorithm_b g) 9100 in
      let sc = s (Coding.Params.algorithm_c g) 9200 in
      Format.printf "cc/%-13d | %10.0f%% / %9.1fx | %10.0f%% / %9.1fx@." rate_denom
        (Exp_common.success_pct sb) sb.Exp_common.mean_blowup (Exp_common.success_pct sc)
        sc.Exp_common.mean_blowup)
    [ 6000; 3000; 1500; 800; 400 ];
  Format.printf "@.Algorithm C spends smaller chunks (K = m log log m vs m log m) for the@.";
  Format.printf "same hash protection, so the same corruption budget hurts it less —@.";
  Format.printf "pre-shared randomness buys noise tolerance, Appendix B's trade.@."
