(* E6 — the §1.2 line-cascade ablation: what flag passing buys.

   On the line topology, a corruption on link (0,1) makes everything
   downstream useless; §1.2 argues that without a global idle signal
   distant parties keep simulating chunks that must later be rewound.
   The honest metric is *rework*: chunks that were simulated and then
   truncated (each wasted chunk is 5K bits of communication plus a
   rewind message), together with recovery iterations and total
   communication.  We hit the first link with repeated bursts and
   compare the scheme with its flag-passing phase enabled vs disabled
   (the ablation switch in Params). *)

let trials = 5

let run () =
  Exp_common.heading "E6  |  Flag-passing ablation on the line cascade (n = 9, repeated bursts)";
  let n = 9 in
  let g = Topology.Graph.line n in
  let pi = Protocol.Protocols.line_flow ~n ~phases:16 ~chat:10 in
  Format.printf "%-22s %9s %12s %14s %10s@." "configuration" "success" "iterations"
    "rework (chunks)" "blowup";
  Format.printf "%s@." (String.make 72 '-');
  let measure label flag_passing =
    let params = { (Coding.Params.algorithm_1 g) with Coding.Params.flag_passing } in
    let rework = ref 0 in
    let s =
      Exp_common.run_trials ~trials (fun t ->
          (* Three bursts on the first link, spread over the run. *)
          let d01 = Topology.Graph.dir_id g ~src:0 ~dst:1 in
          let d10 = Topology.Graph.dir_id g ~src:1 ~dst:0 in
          let key = Util.Rng.int64 (Util.Rng.create (600 + t)) in
          let adv =
            Netsim.Adversary.Oblivious
              (fun ~round ~dir ->
                if (dir = d01 || dir = d10) && round mod 700 < 30 && round > 100 then
                  1 + Int64.to_int (Int64.logand (Util.Rng.at ~seed:key ((round * 16) + dir)) 1L)
                else 0)
          in
          let r = Coding.Scheme.run ~rng:(Util.Rng.create (700 + t)) params pi adv in
          rework := !rework + r.Coding.Scheme.chunks_rewound;
          r)
    in
    Format.printf "%-22s %8.0f%% %12.1f %14.1f %9.1fx@." label (Exp_common.success_pct s)
      s.Exp_common.mean_iters
      (float_of_int !rework /. float_of_int trials)
      s.Exp_common.mean_blowup
  in
  measure "flag passing ON" true;
  measure "flag passing OFF" false;
  Format.printf
    "@.Both configurations stay correct (the per-link ⊥ announcements bound the@.";
  Format.printf
    "damage), but without the global idle signal out-of-sync parties simulate@.";
  Format.printf "chunks that the rewind wave then discards — the §1.2 waste.@."
